// Quickstart: assemble a small recursive program, verify it functionally,
// then compare the unified (2+0) memory system against the data-decoupled
// (2+2) configuration from the paper.
package main

import (
	"fmt"
	"log"

	"repro"
)

const source = `
        .text
        .global main
main:
        li   $a0, 18
        jal  fib
        out  $v0
        halt

# fib(n): deliberately naive recursion — every call pushes a small frame,
# exactly the local-variable traffic the LVC is built for.
fib:
        addi $sp, $sp, -12
        sw   $ra, 8($sp) !local
        sw   $s0, 4($sp) !local
        sw   $a0, 0($sp) !local
        li   $v0, 1
        slti $t0, $a0, 2
        bnez $t0, done
        addi $a0, $a0, -1
        jal  fib
        move $s0, $v0
        lw   $a0, 0($sp) !local
        addi $a0, $a0, -2
        jal  fib
        add  $v0, $v0, $s0
done:
        lw   $s0, 4($sp) !local
        lw   $ra, 8($sp) !local
        addi $sp, $sp, 12
        jr   $ra
`

func main() {
	prog, err := repro.Assemble("fib.s", source)
	if err != nil {
		log.Fatal(err)
	}

	// Functional check on the emulator first.
	m := repro.NewMachine(prog)
	if _, err := m.Run(50_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fib(18) = %d (%d instructions)\n\n", m.Output[0], m.InstCount)

	// Timing: unified vs decoupled memory system.
	for _, cfg := range []repro.Config{
		repro.DefaultConfig().WithPorts(2, 0),
		repro.DefaultConfig().WithPorts(2, 2).WithOptimizations(2),
	} {
		res, err := repro.RunProgram(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s IPC %.3f  cycles %-8d  LVC accesses %d  fwd loads %d (fast %d)\n",
			cfg.Name(), res.IPC(), res.Cycles, res.LVC.Accesses(),
			res.FwdLoads, res.FastFwdLoads)
	}
	fmt.Println("\nEvery memory reference in fib is a stack access, so the (2+2)")
	fmt.Println("machine serves them from the 1-cycle LVC and frees the L1 ports.")
}
