# Recursion + an indirect call: the dependence-analyzer stress example.
#
# count(n) recurses with an 8-byte frame, so its transitive frame-write
# summary grows by one frame per fixpoint round until the analyzer widens
# it to [-inf, 0) — the saved slots still forward across the recursive
# call because the widened interval stays strictly below the caller's
# current $sp. bump is only ever called through $t0 (address-taken via
# la), so the jalr in main kills main's forwarding pair and bump's entry
# alignment is unconstrained. Check with `ddlint -dep examples/asm/recurse.s`.
	.text
	.global main
main:
	li   $a0, 6
	jal  count
	out  $v0
	la   $t0, bump
	addi $sp, $sp, -32
	sw   $a0, 0($sp) !local
	sw   $a1, 4($sp) !local
	jalr $ra, $t0
	lw   $a0, 0($sp) !local
	addi $sp, $sp, 32
	out  $a0
	halt

# count(n): n levels of recursion, one two-word frame per level.
count:
	addi $sp, $sp, -8
	sw   $ra, 4($sp) !local
	sw   $a0, 0($sp) !local
	li   $v0, 0
	blez $a0, count_done
	addi $a0, $a0, -1
	jal  count
	lw   $a0, 0($sp) !local
	add  $v0, $v0, $a0
count_done:
	lw   $ra, 4($sp) !local
	addi $sp, $sp, 8
	jr   $ra

# bump: leaf helper reached only through the jalr above.
bump:
	addi $a1, $a1, 1
	jr   $ra
