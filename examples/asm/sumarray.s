# Sum a global array through a walked pointer. The loads are non-local
# (data segment) and hinted as such; the spill slots are local. The
# analyzer proves both sides, so `ddlint examples/asm/sumarray.s` is clean
# and `ddasm -lint` agrees with the hints.
	.text
	.global main
main:
	addi $sp, $sp, -8
	sw   $s0, 0($sp) !local
	sw   $s1, 4($sp) !local
	la   $s0, arr
	li   $s1, 16
	li   $v0, 0
loop:
	lw   $t0, 0($s0) !nonlocal
	add  $v0, $v0, $t0
	addi $s0, $s0, 4
	addi $s1, $s1, -1
	bnez $s1, loop
	lw   $s0, 0($sp) !local
	lw   $s1, 4($sp) !local
	addi $sp, $sp, 8
	out  $v0
	halt

	.data
arr:
	.word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
