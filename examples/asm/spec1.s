# spec1 — path-dependent frame slots the dataflow cannot pin down.
#
# Each loop iteration picks one of two spill slots through a branch, so
# the slot pointer joins to a stack-derived value with a *path-dependent*
# offset: the analyzer can neither prove the access local (no exact
# offset) nor non-local (the base is still $sp-derived). `ddasm -assign`
# classifies all four accesses speculate-local. Every execution stays
# inside the frame, so SteerSpec steers them to the local stream with
# zero misroutes, while hint-only steering must burn one misroute per PC
# teaching the region predictor. Used by the ablation-assign experiment.
	.text
	.global main
main:
	addi $sp, $sp, -32
	li   $s0, 0          # i
	li   $s1, 48         # iterations
	li   $v0, 0
loop:
	andi $t0, $s0, 1
	bnez $t0, odd1
	addi $t1, $sp, 0
	j    join1
odd1:
	addi $t1, $sp, 8
join1:
	sw   $s0, 0($t1)
	lw   $t2, 0($t1)
	add  $v0, $v0, $t2

	andi $t0, $s0, 2
	bnez $t0, odd2
	addi $t1, $sp, 16
	j    join2
odd2:
	addi $t1, $sp, 24
join2:
	sw   $v0, 0($t1)
	lw   $t3, 0($t1)
	add  $v0, $v0, $t3

	addi $s0, $s0, 1
	slt  $t0, $s0, $s1
	bnez $t0, loop
	addi $sp, $sp, 32
	out  $v0
	halt
