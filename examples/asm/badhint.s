# Deliberately wrong steering hint: the load reads a global but claims
# !local, so hint steering misroutes it into the local stream on every
# execution and pays the squash-and-replay penalty. `ddlint` exits 1 here
# with an unsound-local-hint error — keep this file as the linter's
# negative example (the lint test asserts it stays broken).
	.text
	.global main
main:
	la   $t0, counter
	lw   $t1, 0($t0) !local
	addi $t1, $t1, 1
	sw   $t1, 0($t0) !nonlocal
	out  $t1
	halt

	.data
counter:
	.word 41
