# Naive recursive fib — the quickstart example as a standalone source
# file. Every call pushes a small frame: pure local-variable traffic,
# annotated with sound !local hints (check with `ddlint examples/asm/fib.s`).
	.text
	.global main
main:
	li   $a0, 18
	jal  fib
	out  $v0
	halt

fib:
	addi $sp, $sp, -12
	sw   $ra, 8($sp) !local
	sw   $s0, 4($sp) !local
	sw   $a0, 0($sp) !local
	li   $v0, 1
	slti $t0, $a0, 2
	bnez $t0, done
	addi $a0, $a0, -1
	jal  fib
	move $s0, $v0
	lw   $a0, 0($sp) !local
	addi $a0, $a0, -2
	jal  fib
	add  $v0, $v0, $s0
done:
	lw   $s0, 4($sp) !local
	lw   $ra, 8($sp) !local
	addi $sp, $sp, 12
	jr   $ra
