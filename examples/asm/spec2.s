# spec2 — a speculate-local assignment that is sometimes wrong.
#
# The slot pointer is again path-dependent (so the analyzer assigns
# speculate-local), but every eighth iteration it points *above* main's
# entry $sp — and main's entry $sp is the top of the stack region, so
# those accesses are dynamically non-local. Under SteerSpec the access
# is steered local on faith and the 1-in-8 misses pay the ordinary
# misroute squash-and-replay recovery (counted as SpecMisroutes); the
# architectural output never changes. The hint-only fallback predictor
# does worse: the local/non-local flip at each period boundary costs two
# misroutes per eight iterations. Used by the ablation-assign experiment
# and the speculation soak.
	.text
	.global main
main:
	li   $s0, 0          # i
	li   $s1, 64         # iterations
	li   $v0, 0
loop:
	andi $t0, $s0, 7
	bnez $t0, below
	addi $t1, $sp, 16    # i%8 == 0: above entry $sp -> outside the stack region
	j    join
below:
	addi $t1, $sp, -16   # otherwise: an ordinary (red-zone) frame slot
join:
	sw   $s0, 0($t1)
	lw   $t2, 0($t1)
	add  $v0, $v0, $t2

	addi $s0, $s0, 1
	slt  $t0, $s0, $s1
	bnez $t0, loop
	out  $v0
	halt
