// Portsweep: reproduces the heart of the paper interactively — sweep the
// (N+M) port grid for one workload and print the performance surface
// relative to (2+0), the way Figures 7, 9 and 11 report it.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	name := flag.String("w", "vortex", "workload to sweep")
	scale := flag.Float64("scale", 0.3, "workload scale")
	flag.Parse()

	w, err := repro.WorkloadByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(N+M) performance surface for %s (%s), relative to (2+0)\n\n",
		w.Name, w.PaperName)

	prog := w.Program(*scale)
	run := func(n, m int) uint64 {
		cfg := repro.DefaultConfig().WithPorts(n, m)
		if m > 0 {
			cfg = cfg.WithOptimizations(2)
		}
		res, err := repro.RunProgram(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.Cycles
	}

	base := run(2, 0)
	fmt.Printf("%6s", "")
	for m := 0; m <= 3; m++ {
		fmt.Printf("  M=%d   ", m)
	}
	fmt.Println()
	for n := 2; n <= 4; n++ {
		fmt.Printf("N=%-4d", n)
		for m := 0; m <= 3; m++ {
			fmt.Printf("  %.3f", float64(base)/float64(run(n, m)))
		}
		fmt.Println()
	}
	fmt.Println("\nRead it like paper Figure 11: adding the second LVC port (M=2)")
	fmt.Println("recovers far more performance than adding a third L1 port.")
}
