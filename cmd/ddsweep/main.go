// Command ddsweep runs a declarative parameter sweep across a fleet of
// ddserve backends and assembles one deterministic figure JSON.
//
// Usage:
//
//	ddsweep -spec fig5.json -backends http://a:8080,http://b:8080 -out fig5.out.json
//	ddsweep -spec fig5.json -backends http://a:8080 -checkpoint fig5.ckpt -resume
//	ddsweep -spec fig5.json -backends http://a:8080,http://b:8080 -hedge 2s -census census.json
//
// The spec (sweep/v1) declares the grid — workloads x port geometries x
// steering policies x engines x optimization modes, with explicit point
// exclusions — and ddsweep drives every expanded point to a terminal
// state: health-probed load-aware dispatch, bounded retries with backoff
// that honors the server's Retry-After, hedged requests for stragglers,
// and a per-backend circuit breaker. With -checkpoint each completed
// point is persisted (atomic temp+rename) and -resume re-runs only the
// missing ones; a defective checkpoint file self-heals to empty with a
// logged, counted notice.
//
// The figure JSON on stdout (or -out) is byte-identical for a given spec
// regardless of backend count, hedging, retries or resume. Diagnostics —
// the per-backend / per-outcome census — go to stderr, and -census
// writes them as a JSON artifact.
//
// Exit status: 0 when every point completed, 1 when some points failed
// or the sweep was interrupted (the figure then holds the completed
// subset), 2 for usage and spec errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/sweep"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "sweep/v1 spec file (required)")
		backends  = flag.String("backends", "", "comma-separated ddserve base URLs (required)")
		out       = flag.String("out", "", "figure JSON output path (empty = stdout)")
		ckpt      = flag.String("checkpoint", "", "sweepckpt/v1 checkpoint path (empty = disabled)")
		resume    = flag.Bool("resume", false, "resume from -checkpoint, re-running only missing points")
		parallel  = flag.Int("parallel", 0, "points in flight across all backends (0 = 2x backends)")
		retries   = flag.Int("retries", 0, "attempts per point (0 = 6)")
		hedge     = flag.Duration("hedge", 0, "re-issue a straggling point on a second backend after this delay (0 = off)")
		probe     = flag.Duration("probe", 0, "/readyz health-probe interval (0 = 1s)")
		breakHits = flag.Int("breakfails", 0, "consecutive transient failures that open a backend's breaker (0 = 3)")
		breakCool = flag.Duration("breakcool", 0, "breaker open-state cooldown before the half-open probe (0 = 2s)")
		censusOut = flag.String("census", "", "write the census as JSON to this path")
		seed      = flag.Int64("seed", 1, "backoff-jitter seed (any fixed seed keeps runs reproducible)")
	)
	flag.Parse()

	if *specPath == "" || *backends == "" {
		flag.Usage()
		os.Exit(cliutil.ExitUsage)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		cliutil.FatalUsage("ddsweep", err)
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		cliutil.FatalUsage("ddsweep", err)
	}

	coord, err := sweep.New(spec, sweep.Options{
		Backends:         strings.Split(*backends, ","),
		Parallel:         *parallel,
		MaxAttempts:      *retries,
		Hedge:            *hedge,
		ProbeInterval:    *probe,
		BreakerThreshold: *breakHits,
		BreakerCooldown:  *breakCool,
		Checkpoint:       *ckpt,
		Resume:           *resume,
		Seed:             *seed,
		Log:              os.Stderr,
	})
	if err != nil {
		// Every New failure is a bad spec or bad options: the caller's to fix.
		cliutil.FatalUsage("ddsweep", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	start := time.Now()
	fig, census, runErr := coord.Run(ctx)
	fmt.Fprintf(os.Stderr, "ddsweep: finished in %v\n", time.Since(start).Round(time.Millisecond))
	census.Render(os.Stderr)

	if *censusOut != "" {
		if err := writeCensus(*censusOut, census); err != nil {
			fmt.Fprintln(os.Stderr, "ddsweep: census artifact:", err)
		}
	}

	// The figure is written even when points failed: it holds the completed
	// subset, and with -checkpoint the next -resume finishes the rest.
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cliutil.FatalUsage("ddsweep", err)
		}
		defer f.Close()
		w = f
	}
	if err := fig.EncodeJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "ddsweep:", err)
		os.Exit(cliutil.ExitRunFailure)
	}

	if runErr != nil {
		fmt.Fprintln(os.Stderr, "ddsweep:", runErr)
		os.Exit(cliutil.ExitRunFailure)
	}
}

func writeCensus(path string, census *sweep.Census) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := census.EncodeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
