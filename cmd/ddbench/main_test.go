package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
)

// The -compare exit-code contract: 0 within tolerance, 1 when the
// candidate regressed (the change under test is at fault), 2 when a
// report is unusable (the invocation is at fault). CI keys on the split.

func writeReport(t *testing.T, name string, rep *experiments.BenchReport) string {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchFixture(minstPerSec float64, cycles uint64) *experiments.BenchReport {
	const committed = 1_000_000
	secs := committed / 1e6 / minstPerSec
	return &experiments.BenchReport{
		Schema: experiments.BenchSchema,
		Scale:  0.1,
		Config: "(3+2)",
		Workloads: []experiments.BenchEntry{{
			Workload:    "li",
			Cycles:      cycles,
			Committed:   committed,
			WallSeconds: secs,
			MinstPerSec: minstPerSec,
		}},
		TotalMinst: committed / 1e6,
		TotalSecs:  secs,
	}
}

func compareCode(t *testing.T, baseline, candidate string, cyclecheck bool) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := runCompare(&stdout, &stderr, baseline, candidate, 0.05, cyclecheck, core.EngineEvent)
	return code, stdout.String(), stderr.String()
}

func TestCompareExitCodes(t *testing.T) {
	okBase := writeReport(t, "base.json", benchFixture(10, 5000))

	t.Run("within tolerance exits 0", func(t *testing.T) {
		cand := writeReport(t, "cand.json", benchFixture(9.8, 5000))
		code, stdout, _ := compareCode(t, okBase, cand, true)
		if code != 0 {
			t.Fatalf("code = %d, want 0\n%s", code, stdout)
		}
	})

	t.Run("regression exits 1", func(t *testing.T) {
		cand := writeReport(t, "cand.json", benchFixture(5, 5000))
		code, stdout, _ := compareCode(t, okBase, cand, false)
		if code != cliutil.ExitRunFailure {
			t.Fatalf("code = %d, want %d\n%s", code, cliutil.ExitRunFailure, stdout)
		}
	})

	t.Run("cyclecheck mismatch exits 1", func(t *testing.T) {
		cand := writeReport(t, "cand.json", benchFixture(10, 5001))
		code, stdout, _ := compareCode(t, okBase, cand, true)
		if code != cliutil.ExitRunFailure || !strings.Contains(stdout, "CYCLE MISMATCH") {
			t.Fatalf("code = %d, stdout:\n%s", code, stdout)
		}
		// Without -cyclecheck a cycle change alone does not fail the gate.
		if code, _, _ := compareCode(t, okBase, cand, false); code != 0 {
			t.Fatalf("cyclecheck off: code = %d, want 0", code)
		}
	})

	t.Run("missing baseline exits 2", func(t *testing.T) {
		code, _, stderr := compareCode(t, filepath.Join(t.TempDir(), "nope.json"), okBase, false)
		if code != cliutil.ExitUsage {
			t.Fatalf("code = %d, want %d\n%s", code, cliutil.ExitUsage, stderr)
		}
	})

	t.Run("corrupt candidate exits 2", func(t *testing.T) {
		dir := t.TempDir()
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		code, _, stderr := compareCode(t, okBase, bad, false)
		if code != cliutil.ExitUsage {
			t.Fatalf("code = %d, want %d\n%s", code, cliutil.ExitUsage, stderr)
		}
	})

	t.Run("wrong schema exits 2", func(t *testing.T) {
		rep := benchFixture(10, 5000)
		rep.Schema = "ddbench/v0"
		stale := writeReport(t, "stale.json", rep)
		code, _, stderr := compareCode(t, okBase, stale, false)
		if code != cliutil.ExitUsage || !strings.Contains(stderr, "schema") {
			t.Fatalf("code = %d, stderr:\n%s", code, stderr)
		}
	})

	t.Run("scale mismatch exits 2", func(t *testing.T) {
		rep := benchFixture(10, 5000)
		rep.Scale = 0.5
		other := writeReport(t, "other.json", rep)
		code, _, stderr := compareCode(t, okBase, other, false)
		if code != cliutil.ExitUsage || !strings.Contains(stderr, "scale") {
			t.Fatalf("code = %d, stderr:\n%s", code, stderr)
		}
	})
}
