// Command ddbench regenerates the paper's tables and figures, measures
// simulator throughput, and gates performance regressions.
//
// Usage:
//
//	ddbench -list
//	ddbench -exp fig7 -scale 0.5
//	ddbench -exp all -scale 1.0 -v
//	ddbench -exp all -scale 0.1 -timeout 10m -maxcycles 50000000
//	ddbench -json -scale 0.1 > BENCH.json          # simulator-performance snapshot
//	ddbench -compare BENCH_6.json -comparewith BENCH_7.json   # gate two snapshots
//	ddbench -compare BENCH_7.json                  # gate a fresh run vs a snapshot
//
// -timeout bounds the whole invocation in wall-clock time and -maxcycles
// bounds each individual simulation; either abort exits non-zero with the
// typed failure and, when available, the pipeline snapshot of the run that
// tripped — always on stderr, so stdout stays parseable.
//
// -compare reads a committed ddbench/v1 baseline and exits 1 when
// aggregate Minst/s dropped by more than -tolerance (default 5%) in the
// candidate (-comparewith file, or a fresh benchmark at the baseline's
// scale). Changed deterministic cycle counts are flagged per workload;
// with -cyclecheck any such change also fails the gate, which is how CI
// asserts the tick and event engines simulate the identical machine.
// Exit codes distinguish the gate's verdict from unusable input: 1 means
// the candidate regressed (the change is at fault), 2 means a report was
// unreadable, schema-mismatched or scale-incomparable (the invocation is
// at fault and retrying without fixing it cannot succeed).
//
// -engine selects the run loop (event cycle skipping by default, tick for
// the per-cycle reference); -cpuprofile, -memprofile and -trace capture
// pprof/trace artifacts of the invocation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		list    = flag.Bool("list", false, "list experiments and exit")
		bench   = flag.Bool("json", false, "benchmark simulator throughput per workload and emit the ddbench/v1 JSON report")
		verb    = flag.Bool("v", false, "print per-simulation progress")
		compare = flag.String("compare", "", "baseline ddbench/v1 report: compare and gate regressions instead of running experiments")
		against = flag.String("comparewith", "", "candidate report for -compare (empty = run a fresh benchmark at the baseline's scale)")
		tol     = flag.Float64("tolerance", 0.05, "allowed fractional aggregate Minst/s drop for -compare")
		cycheck = flag.Bool("cyclecheck", false, "with -compare: also fail when any workload's deterministic cycle count changed")
		reps    = flag.Int("reps", 1, "with -json: repetitions per workload, fastest kept (noise floor for snapshots)")
	)
	budget := cliutil.RegisterBudget(flag.CommandLine)
	engineFlag := cliutil.RegisterEngine(flag.CommandLine)
	profiles := cliutil.RegisterProfiles(flag.CommandLine)
	flag.Parse()

	engine, err := core.ParseEngine(*engineFlag)
	if err != nil {
		cliutil.FatalSim("ddbench", err)
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		cliutil.FatalSim("ddbench", err)
	}
	defer stopProfiles()

	if *list {
		for _, e := range experiments.AllExperiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	if *compare != "" {
		code := runCompare(os.Stdout, os.Stderr, *compare, *against, *tol, *cycheck, engine)
		stopProfiles()
		os.Exit(code)
	}

	if *bench {
		rep, err := experiments.BenchEngineReps(*scale, engine, *reps)
		if err != nil {
			cliutil.FatalSim("ddbench", err)
		}
		if err := rep.EncodeJSON(os.Stdout); err != nil {
			cliutil.FatalSim("ddbench", err)
		}
		return
	}

	r := experiments.NewRunner(*scale)
	if *verb {
		r.Progress = os.Stderr
	}
	r.RunOpts = budget.RunOptions()
	r.RunOpts.Engine = engine

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.AllExperiments()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			cliutil.FatalSim("ddbench", err)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		out, err := e.Run(r)
		if err != nil {
			cliutil.FatalSim("ddbench: "+e.ID, err)
		}
		fmt.Printf("==> %s — %s\n", e.ID, e.Title)
		fmt.Println(out)
		if *verb {
			fmt.Fprintf(os.Stderr, "  [%s took %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}

// runCompare executes the perf-regression gate and returns the exit
// code: 0 within tolerance; ExitRunFailure (1) on a regression, on a
// cyclecheck mismatch, or when the fresh candidate benchmark itself
// failed; ExitUsage (2) when a report is unreadable, schema-mismatched
// or scale-incomparable. The report goes to stdout either way; all
// diagnostics to stderr.
func runCompare(stdout, stderr io.Writer, baselinePath, candidatePath string, tolerance float64, cyclecheck bool, engine core.Engine) int {
	baseline, err := experiments.ReadBenchReport(baselinePath)
	if err != nil {
		cliutil.ReportSim(stderr, "ddbench", err)
		return cliutil.ExitUsage
	}
	var candidate *experiments.BenchReport
	if candidatePath != "" {
		if candidate, err = experiments.ReadBenchReport(candidatePath); err != nil {
			cliutil.ReportSim(stderr, "ddbench", err)
			return cliutil.ExitUsage
		}
	} else {
		fmt.Fprintf(stderr, "ddbench: benchmarking fresh candidate at scale %g\n", baseline.Scale)
		if candidate, err = experiments.BenchEngine(baseline.Scale, engine); err != nil {
			// The simulation failed, not the invocation: a run failure.
			cliutil.ReportSim(stderr, "ddbench", err)
			return cliutil.ExitRunFailure
		}
	}
	cmp, err := experiments.CompareBench(baseline, candidate)
	if err != nil {
		// ErrBadReport / ErrScaleMismatch: the inputs are not comparable.
		cliutil.ReportSim(stderr, "ddbench", err)
		return cliutil.ExitUsage
	}
	fmt.Fprint(stdout, cmp.Render(tolerance))
	if cmp.Regressed(tolerance) {
		return cliutil.ExitRunFailure
	}
	if cyclecheck && cmp.AnyCyclesChanged() {
		fmt.Fprintln(stdout, "CYCLE MISMATCH: deterministic cycle counts differ between the reports")
		return cliutil.ExitRunFailure
	}
	return 0
}
