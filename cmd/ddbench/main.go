// Command ddbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ddbench -list
//	ddbench -exp fig7 -scale 0.5
//	ddbench -exp all -scale 1.0 -v
//	ddbench -exp all -scale 0.1 -timeout 10m -maxcycles 50000000
//	ddbench -json -scale 0.1 > BENCH.json   # simulator-performance snapshot
//
// -timeout bounds the whole invocation in wall-clock time and -maxcycles
// bounds each individual simulation; either abort exits non-zero with the
// typed failure and, when available, the pipeline snapshot of the run that
// tripped (the watchdog/abort state dump).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/simerr"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		list  = flag.Bool("list", false, "list experiments and exit")
		bench = flag.Bool("json", false, "benchmark simulator throughput per workload and emit the ddbench/v1 JSON report")
		verb  = flag.Bool("v", false, "print per-simulation progress")

		maxCycles = flag.Uint64("maxcycles", 0, "abort any single simulation after this many cycles (0 = unbounded)")
		timeout   = flag.Duration("timeout", 0, "abort the whole invocation after this much wall-clock time (0 = unbounded)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.AllExperiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	if *bench {
		rep, err := experiments.Bench(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			os.Exit(1)
		}
		if err := rep.EncodeJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			os.Exit(1)
		}
		return
	}

	r := experiments.NewRunner(*scale)
	if *verb {
		r.Progress = os.Stderr
	}
	r.RunOpts.MaxCycles = *maxCycles
	if *timeout > 0 {
		r.RunOpts.Deadline = time.Now().Add(*timeout)
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.AllExperiments()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			os.Exit(1)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		out, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddbench: %s: %v\n", e.ID, err)
			var se *simerr.SimError
			if errors.As(err, &se) {
				fmt.Fprintf(os.Stderr, "pipeline snapshot (%s):\n%s", se.Kind, se.Snapshot)
			}
			os.Exit(1)
		}
		fmt.Printf("==> %s — %s\n", e.ID, e.Title)
		fmt.Println(out)
		if *verb {
			fmt.Fprintf(os.Stderr, "  [%s took %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
