// Command ddbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ddbench -list
//	ddbench -exp fig7 -scale 0.5
//	ddbench -exp all -scale 1.0 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		list  = flag.Bool("list", false, "list experiments and exit")
		verb  = flag.Bool("v", false, "print per-simulation progress")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.AllExperiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	r := experiments.NewRunner(*scale)
	if *verb {
		r.Progress = os.Stderr
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.AllExperiments()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			os.Exit(1)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		out, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("==> %s — %s\n", e.ID, e.Title)
		fmt.Println(out)
		if *verb {
			fmt.Fprintf(os.Stderr, "  [%s took %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
