// Command ddserve hosts the simulator as a fault-tolerant HTTP service:
// POST a simulation job (workload name or assembly source plus machine
// configuration) to /jobs and get the statistics block back as JSON.
//
// Usage:
//
//	ddserve -addr :8080 -cache /var/cache/ddserve
//	ddserve -addr :8080 -workers 8 -queue 128 -maxcycles 50000000 -timeout 30s
//	ddserve -addr :8080 -pprof localhost:6060
//
//	curl -s localhost:8080/jobs -d '{"workload":"li","scale":0.1,"ports":"3+2","opt":true}'
//	curl -s localhost:8080/statz
//
// The service is robust by construction: a bounded worker pool behind an
// admission-controlled queue with per-client fairness (429 + Retry-After
// when full), per-job timeouts and cancel propagation, bounded retries
// with backoff for transient failures, typed error JSON with the pipeline
// snapshot for the rest, a persistent result cache that treats corrupt
// entries as misses, and graceful drain on SIGTERM/SIGINT: intake stops
// (503), in-flight jobs finish inside -drain, stragglers are cancelled.
//
// The shared -maxcycles/-watchdog budget flags bound every job's run; the
// shared -timeout flag is the per-job wall-clock cap here. -pprof mounts
// net/http/pprof on its own listener so profiling never shares the
// service port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "service listen address")
		pprofAddr = flag.String("pprof", "", "pprof sidecar listen address (empty = disabled)")
		workers   = flag.Int("workers", 0, "simulation worker pool size (0 = min(GOMAXPROCS, 4))")
		queueCap  = flag.Int("queue", 0, "job queue depth bound (0 = 64)")
		perClient = flag.Int("perclient", 0, "per-client queued-job bound (0 = 8)")
		retries   = flag.Int("retries", 0, "retries per transiently-failed job (0 = 2, negative = none)")
		maxScale  = flag.Float64("maxscale", 1.0, "largest accepted workload scale factor")
		cacheDir  = flag.String("cache", "", "persistent result cache directory (empty = disabled)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
	)
	budget := cliutil.RegisterBudget(flag.CommandLine)
	flag.Parse()

	jobTimeout := budget.Timeout
	if jobTimeout == 0 {
		jobTimeout = 60 * time.Second
	}
	srv, err := serve.New(serve.Options{
		Workers:      *workers,
		QueueDepth:   *queueCap,
		MaxPerClient: *perClient,
		MaxRetries:   *retries,
		JobTimeout:   jobTimeout,
		MaxScale:     *maxScale,
		CacheDir:     *cacheDir,
		RunOpts:      budget.RunOptions(), // Deadline ignored: per-job wall clock is JobTimeout
	})
	if err != nil {
		cliutil.FatalSim("ddserve", err)
	}

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank
			// import; the service mux below never does.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ddserve: pprof sidecar:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "ddserve: pprof sidecar on %s\n", *pprofAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		errCh <- httpSrv.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "ddserve: serving on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		cliutil.FatalSim("ddserve", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "ddserve: draining (deadline %v)\n", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: drain the job layer first so queued work finishes
	// and late submissions get typed 503s, then close the listener.
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "ddserve: forced drain:", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "ddserve: http shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "ddserve: drained")
}
