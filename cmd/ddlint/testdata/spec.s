# Fixture for the assign-pass lint schema: one path-dependent slot whose
# speculate-local assignment is wrong every fourth iteration (the i%4==0
# path points above main's entry $sp, the top of the stack region), one
# access through a reloaded pointer the analysis must leave dynamic even
# though it always lands in the frame, and a pair of provably non-local
# global accesses the oracle confirms.
	.text
	.global main
main:
	addi $sp, $sp, -16
	li   $s0, 0
	li   $s1, 8
	li   $v0, 0
	la   $s2, cell
	sw   $sp, 0($s2)
loop:
	andi $t0, $s0, 3
	bnez $t0, below
	addi $t1, $sp, 24
	j    join
below:
	addi $t1, $sp, 0
join:
	sw   $s0, 0($t1)
	lw   $t2, 0($t1)
	lw   $t3, 0($s2)
	lw   $t4, 0($t3)
	add  $v0, $v0, $t2
	add  $v0, $v0, $t4
	addi $s0, $s0, 1
	slt  $t0, $s0, $s1
	bnez $t0, loop
	addi $sp, $sp, 16
	out  $v0
	halt

	.data
cell:
	.word 0
