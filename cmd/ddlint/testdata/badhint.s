# Fixture for the ddlint JSON golden test: one unsound region hint plus
# stores the dependence pass must flag. Keep instruction order stable —
# the golden file pins PCs.
        .data
val:    .word 7
        .text
main:
        addi $sp, $sp, -16
        sw   $s0, 0($sp) !local
        la   $t0, val
        lw   $s0, 0($t0) !local
        move $t1, $sp
        bnez $s0, skip
        addi $t1, $t1, 4
skip:
        sw   $zero, 0($t1) !local
        lw   $v0, 0($sp) !local
        addi $sp, $sp, 16
        out  $v0
        halt
