// Command ddlint runs the static access-region analyzer over assembled
// programs and reports lint findings: steering hints the analysis proves
// wrong, unbalanced $sp adjustments, stack addresses escaping to non-stack
// memory, and statically out-of-frame accesses. With -dep it also runs the
// interprocedural dependence analysis and reports its informational
// findings (missed forwarding, never-combining runs, ambiguous slots).
//
// Usage:
//
//	ddlint program.s ...           # lint assembly files
//	ddlint -w li                   # lint one generated workload
//	ddlint -workloads              # lint all generated workloads
//	ddlint -json program.s         # machine-readable findings
//	ddlint -dump program.s         # also print per-access classification
//	ddlint -dep program.s          # also run the dependence analysis
//	ddlint -assign program.s       # run hint assignment + the emulated
//	                               # oracle cross-check of every assignment
//	ddlint -assign -strip -w li    # ... after stripping generator hints
//
// With -assign, the region/dependence passes are replaced by the
// assignment misclassification lint: every provably-local/non-local
// assignment the emulated oracle contradicts is an error, every
// speculate-local assignment that dynamically went non-local and every
// missed always-local access is informational, each carrying the
// analyzer's reason chain.
//
// Exit status: 0 when no warning- or error-severity findings, 1 when any
// is reported (informational dependence findings never fail the run),
// 2 on usage or assembly errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit findings as JSON")
		dump     = fs.Bool("dump", false, "print the per-access classification table")
		dep      = fs.Bool("dep", false, "run the interprocedural dependence analysis too")
		assign   = fs.Bool("assign", false, "run hint assignment and cross-check it against the emulated oracle")
		strip    = fs.Bool("strip", false, "strip existing hints before analysis (re-hint from scratch)")
		steps    = fs.Uint64("steps", 0, "oracle replay budget for -assign (0 = default)")
		wName    = fs.String("w", "", "lint the named generated workload instead of files")
		allW     = fs.Bool("workloads", false, "lint every generated workload")
		scale    = fs.Float64("scale", 0.1, "scale for generated workloads")
		warnOnly = fs.Bool("errors-only", false, "report only error-severity findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var progs []*asm.Program
	switch {
	case *allW:
		for _, w := range workload.All() {
			progs = append(progs, w.Program(*scale))
		}
	case *wName != "":
		w, err := workload.ByName(*wName)
		if err != nil {
			return usageErr(stderr, err)
		}
		progs = append(progs, w.Program(*scale))
	default:
		if fs.NArg() == 0 {
			return usageErr(stderr, fmt.Errorf("need assembly files, -w <workload>, or -workloads"))
		}
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				return usageErr(stderr, err)
			}
			prog, err := asm.Assemble(path, string(src))
			if err != nil {
				return usageErr(stderr, err)
			}
			progs = append(progs, prog)
		}
	}

	failures := 0
	var jsonDiags []any
	for _, prog := range progs {
		if *strip {
			prog = prog.StripHints()
		}
		if *assign {
			res := analysis.Assign(prog)
			diags, vst := res.Verify(*steps)
			if *warnOnly {
				kept := diags[:0]
				for _, d := range diags {
					if d.Sev >= analysis.SevError {
						kept = append(kept, d)
					}
				}
				diags = kept
			}
			for _, d := range diags {
				if d.Sev >= analysis.SevWarning {
					failures++
				}
				if *jsonOut {
					jsonDiags = append(jsonDiags, struct {
						Program string `json:"program"`
						Diag    any    `json:"finding"`
					}{prog.Name, d.JSONForm()})
				} else {
					fmt.Fprintf(stdout, "%s:%s\n", prog.Name, d)
				}
			}
			if !*jsonOut {
				fmt.Fprintf(stdout, "%s: %s\n", prog.Name, res.Table.Summarize())
				fmt.Fprintf(stdout, "%s: oracle: %d steps (halted=%v), %d entries executed, %d unsound, %d misspeculated, %d missed-local\n",
					prog.Name, vst.Steps, vst.Halted, vst.Executed, vst.Unsound, vst.Misspec, vst.MissedLocal)
				if *dump {
					fmt.Fprint(stdout, res.Report())
				}
			}
			continue
		}
		res := analysis.Analyze(prog)
		diags := res.Diags
		if *warnOnly {
			diags = res.Errors()
		}
		var depRes *analysis.DepResult
		if *dep {
			depRes = analysis.Dependences(prog, 0)
			if !*warnOnly {
				diags = append(append([]analysis.Diag(nil), diags...), depRes.Diags...)
			}
		}
		for _, d := range diags {
			if d.Sev >= analysis.SevWarning {
				failures++
			}
			if *jsonOut {
				jsonDiags = append(jsonDiags, struct {
					Program string `json:"program"`
					Diag    any    `json:"finding"`
				}{prog.Name, d.JSONForm()})
			} else {
				fmt.Fprintf(stdout, "%s:%s\n", prog.Name, d)
			}
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "%s: %s\n", prog.Name, res.Summarize())
			if depRes != nil {
				fmt.Fprintf(stdout, "%s: dep: %d forwarding pairs, %d combining groups, %d functions\n",
					prog.Name, len(depRes.Pairs), len(depRes.Groups), len(depRes.Funcs))
			}
			if *dump {
				fmt.Fprint(stdout, res.Report())
				if depRes != nil {
					fmt.Fprint(stdout, depRes.Report())
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if jsonDiags == nil {
			jsonDiags = []any{}
		}
		if err := enc.Encode(jsonDiags); err != nil {
			return usageErr(stderr, err)
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

func usageErr(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "ddlint:", err)
	return 2
}
