// Command ddlint runs the static access-region analyzer over assembled
// programs and reports lint findings: steering hints the analysis proves
// wrong, unbalanced $sp adjustments, stack addresses escaping to non-stack
// memory, and statically out-of-frame accesses.
//
// Usage:
//
//	ddlint program.s ...           # lint assembly files
//	ddlint -w li                   # lint one generated workload
//	ddlint -workloads              # lint all generated workloads
//	ddlint -json program.s         # machine-readable findings
//	ddlint -dump program.s         # also print per-access classification
//
// Exit status: 0 when no findings, 1 when any finding is reported,
// 2 on usage or assembly errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/workload"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		dump     = flag.Bool("dump", false, "print the per-access classification table")
		wName    = flag.String("w", "", "lint the named generated workload instead of files")
		allW     = flag.Bool("workloads", false, "lint every generated workload")
		scale    = flag.Float64("scale", 0.1, "scale for generated workloads")
		warnOnly = flag.Bool("errors-only", false, "report only error-severity findings")
	)
	flag.Parse()

	var progs []*asm.Program
	switch {
	case *allW:
		for _, w := range workload.All() {
			progs = append(progs, w.Program(*scale))
		}
	case *wName != "":
		w, err := workload.ByName(*wName)
		if err != nil {
			usageErr(err)
		}
		progs = append(progs, w.Program(*scale))
	default:
		if flag.NArg() == 0 {
			usageErr(fmt.Errorf("need assembly files, -w <workload>, or -workloads"))
		}
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				usageErr(err)
			}
			prog, err := asm.Assemble(path, string(src))
			if err != nil {
				usageErr(err)
			}
			progs = append(progs, prog)
		}
	}

	found := 0
	var jsonDiags []any
	for _, prog := range progs {
		res := analysis.Analyze(prog)
		diags := res.Diags
		if *warnOnly {
			diags = res.Errors()
		}
		for _, d := range diags {
			found++
			if *jsonOut {
				j := d.JSONForm()
				jsonDiags = append(jsonDiags, struct {
					Program string `json:"program"`
					Diag    any    `json:"finding"`
				}{prog.Name, j})
			} else {
				fmt.Printf("%s:%s\n", prog.Name, d)
			}
		}
		if !*jsonOut {
			fmt.Printf("%s: %s\n", prog.Name, res.Summarize())
			if *dump {
				fmt.Print(res.Report())
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jsonDiags == nil {
			jsonDiags = []any{}
		}
		if err := enc.Encode(jsonDiags); err != nil {
			usageErr(err)
		}
	}
	if found > 0 {
		os.Exit(1)
	}
}

func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "ddlint:", err)
	os.Exit(2)
}
