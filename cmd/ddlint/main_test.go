package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the -json wire format (including the per-finding
// "pass" field) against a golden file. Regenerate with -update after a
// deliberate schema change.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dep", "-json", "testdata/badhint.s"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (fixture has an error finding); stderr: %s", code, stderr.String())
	}
	const golden = "testdata/badhint.json"
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("JSON output drifted from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			stdout.String(), want)
	}
}

// TestAssignJSONGolden pins the -assign -json wire format (the same
// finding schema, produced by the assignment oracle cross-check) against
// its own golden file.
func TestAssignJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-assign", "-json", "testdata/spec.s"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (assign findings are informational); stderr: %s", code, stderr.String())
	}
	const golden = "testdata/spec_assign.json"
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("JSON output drifted from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			stdout.String(), want)
	}
}

// TestJSONSchema decodes the golden output and checks every finding
// carries the stable fields, that all three analysis passes are
// represented, and that each pass name matches its finding kinds.
func TestJSONSchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	run([]string{"-dep", "-json", "testdata/badhint.s"}, &stdout, &stderr)
	var assignOut bytes.Buffer
	run([]string{"-assign", "-json", "testdata/spec.s"}, &assignOut, &stderr)
	var rows []struct {
		Program string `json:"program"`
		Finding struct {
			Pass     string `json:"pass"`
			Kind     string `json:"kind"`
			Severity string `json:"severity"`
			PC       string `json:"pc"`
			Function string `json:"function"`
			Inst     string `json:"inst"`
			Msg      string `json:"msg"`
		} `json:"finding"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rows); err != nil {
		t.Fatalf("output is not the expected JSON shape: %v\n%s", err, stdout.String())
	}
	extra := rows[:0:0]
	if err := json.Unmarshal(assignOut.Bytes(), &extra); err != nil {
		t.Fatalf("-assign output is not the expected JSON shape: %v\n%s", err, assignOut.String())
	}
	rows = append(rows, extra...)
	if len(rows) == 0 {
		t.Fatal("fixtures produced no findings")
	}
	passes := map[string]bool{}
	for _, r := range rows {
		f := r.Finding
		if r.Program == "" || f.Pass == "" || f.Kind == "" || f.Severity == "" ||
			f.PC == "" || f.Inst == "" || f.Msg == "" {
			t.Errorf("finding missing required fields: %+v", r)
		}
		if !strings.HasPrefix(f.PC, "0x") {
			t.Errorf("pc %q not hex-prefixed", f.PC)
		}
		passes[f.Pass] = true
		depKind := f.Kind == "missed-forwarding" || f.Kind == "never-combines" || f.Kind == "ambiguous-slot"
		if depKind != (f.Pass == "depend") {
			t.Errorf("kind %q attributed to pass %q", f.Kind, f.Pass)
		}
		assignKind := strings.HasPrefix(f.Kind, "assign-")
		if assignKind != (f.Pass == "assign") {
			t.Errorf("kind %q attributed to pass %q", f.Kind, f.Pass)
		}
	}
	for _, p := range []string{"region", "depend", "assign"} {
		if !passes[p] {
			t.Errorf("expected findings from pass %q, got %v", p, passes)
		}
	}
}

// TestDepInfoFindingsDoNotFail: informational dependence findings alone
// must not produce a non-zero exit — only warnings and errors fail a run.
func TestDepInfoFindingsDoNotFail(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dep", "../../examples/asm/fib.s"}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("exit code %d on a lint-clean program with -dep; output:\n%s%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "forwarding pairs") {
		t.Errorf("missing dep summary line:\n%s", stdout.String())
	}
}

// TestErrorsOnlySuppressesDepFindings: -errors-only keeps the historical
// behavior of reporting only error-severity region findings.
func TestErrorsOnlySuppressesDepFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dep", "-errors-only", "testdata/badhint.s"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	out := stdout.String()
	if !strings.Contains(out, "unsound-local-hint") {
		t.Errorf("error finding suppressed:\n%s", out)
	}
	if strings.Contains(out, "missed-forwarding") || strings.Contains(out, "ambiguous-slot") {
		t.Errorf("-errors-only leaked info findings:\n%s", out)
	}
}

// TestUsageError: no inputs is a usage error (exit 2), not a lint failure.
func TestUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "need assembly files") {
		t.Errorf("missing usage message: %s", stderr.String())
	}
}
