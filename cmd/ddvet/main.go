// Command ddvet runs the repo-level static-analysis suite over the
// simulator's own source, enforcing the invariants the dynamic test suites
// probe: deterministic results (no wall-clock, no unseeded randomness, no
// order-sensitive map iteration in output paths), the package layering DAG,
// the simerr error taxonomy, and allocation-free //ddvet:hotpath functions
// cross-validated against the compiler's -gcflags=-m escape analysis.
//
// Usage:
//
//	ddvet                      # check the module rooted at .
//	ddvet -root path           # check another module (fixtures, worktrees)
//	ddvet -json                # machine-readable ddvet/v1 report
//	ddvet -rules layering,errors
//	ddvet -escapes=false       # skip the compiler escape cross-validation
//	ddvet -baseline f.json     # grandfather the findings listed in f.json
//	ddvet -write-baseline      # rewrite the baseline to the current findings
//	ddvet -escapes-from m.txt  # use canned -gcflags=-m output (tests, CI
//	                           # debugging) instead of invoking the compiler
//
// The baseline defaults to .ddvet-baseline.json at the module root; a
// missing file is an empty baseline, so a clean tree needs no file at all.
// Baselined findings and stale baseline entries are reported but do not
// fail the run.
//
// Exit status: 0 when every finding is baselined (or none exist), 1 when
// any new finding is reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/srccheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		root          = fs.String("root", ".", "module root (directory holding go.mod)")
		jsonOut       = fs.Bool("json", false, "emit the ddvet/v1 JSON report")
		rules         = fs.String("rules", "", "comma-separated checker subset (default: all of "+strings.Join(srccheck.CheckerNames(), ",")+")")
		escapes       = fs.Bool("escapes", true, "run go build -gcflags=-m and cross-validate hotpath functions")
		escapesFrom   = fs.String("escapes-from", "", "file of canned -gcflags=-m output to use instead of invoking the compiler")
		baselinePath  = fs.String("baseline", "", "baseline file (default <root>/.ddvet-baseline.json)")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the baseline file to grandfather the current findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "ddvet: unexpected arguments (the target is -root)")
		return 2
	}

	cfg := srccheck.DefaultConfig()
	if *rules != "" {
		cfg.Rules = map[string]bool{}
		known := map[string]bool{}
		for _, n := range srccheck.CheckerNames() {
			known[n] = true
		}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !known[r] {
				fmt.Fprintf(stderr, "ddvet: unknown checker %q (have %s)\n", r, strings.Join(srccheck.CheckerNames(), ", "))
				return 2
			}
			cfg.Rules[r] = true
		}
	}

	hotpathOn := cfg.Rules == nil || cfg.Rules["hotpath"]
	switch {
	case *escapesFrom != "":
		data, err := os.ReadFile(*escapesFrom)
		if err != nil {
			fmt.Fprintln(stderr, "ddvet:", err)
			return 2
		}
		cfg.Escapes = srccheck.ParseEscapes(data)
	case *escapes && hotpathOn:
		diags, err := srccheck.RunEscapeAnalysis(*root)
		if err != nil {
			fmt.Fprintln(stderr, "ddvet:", err)
			return 2
		}
		cfg.Escapes = diags
	}

	mod, findings, err := srccheck.Run(*root, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "ddvet:", err)
		return 2
	}

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(*root, ".ddvet-baseline.json")
	}
	if *writeBaseline {
		b := srccheck.FromFindings(findings)
		if err := b.Save(bpath); err != nil {
			fmt.Fprintln(stderr, "ddvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "ddvet: wrote %d baseline entr%s to %s\n",
			len(b.Entries), map[bool]string{true: "y", false: "ies"}[len(b.Entries) == 1], bpath)
	}
	baseline, err := srccheck.LoadBaseline(bpath)
	if err != nil {
		fmt.Fprintln(stderr, "ddvet:", err)
		return 2
	}
	stale := baseline.Apply(findings)

	report := srccheck.NewReport(mod, findings, stale)
	if *jsonOut {
		if err := report.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "ddvet:", err)
			return 2
		}
	} else {
		report.WriteText(stdout)
	}
	if report.Summary.New > 0 {
		return 1
	}
	return 0
}
