package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/srccheck"
)

var update = flag.Bool("update", false, "rewrite golden files")

const (
	violationsRoot = "../../internal/srccheck/testdata/violations"
	cleanRoot      = "../../internal/srccheck/testdata/clean"
)

func runVet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestJSONGolden pins the ddvet/v1 wire format against a golden file built
// from the seeded-violation fixture. Regenerate with -update after a
// deliberate schema change.
func TestJSONGolden(t *testing.T) {
	code, stdout, stderr := runVet(t,
		"-root", violationsRoot,
		"-escapes-from", filepath.Join(violationsRoot, "escapes.txt"),
		"-json")
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (fixture is all violations); stderr: %s", code, stderr)
	}
	const golden = "testdata/violations.json"
	if *update {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("JSON output drifted from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			stdout, want)
	}

	// The golden bytes must decode as a schema-complete ddvet/v1 report.
	var rep srccheck.Report
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatalf("golden does not decode: %v", err)
	}
	if rep.Schema != srccheck.ReportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, srccheck.ReportSchema)
	}
	if rep.Module != "violations" {
		t.Errorf("module = %q, want violations", rep.Module)
	}
	if rep.Summary.Total == 0 || rep.Summary.New != rep.Summary.Total || rep.Summary.Baselined != 0 {
		t.Errorf("summary off without a baseline: %+v", rep.Summary)
	}
	for _, f := range rep.Findings {
		if f.Rule == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("schema-incomplete finding in golden: %+v", f)
		}
	}
}

// TestCleanFixtureExitsZero: a conforming module needs no baseline file.
func TestCleanFixtureExitsZero(t *testing.T) {
	code, _, stderr := runVet(t,
		"-root", cleanRoot,
		"-escapes-from", filepath.Join(cleanRoot, "escapes.txt"))
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stderr: %s", code, stderr)
	}
}

// TestBaselineLifecycle drives the full grandfathering workflow against the
// violations fixture: write a baseline and the same findings stop failing
// the run; remove one entry and that finding is new again (exit 1); add a
// bogus entry and it is reported stale without failing the run.
func TestBaselineLifecycle(t *testing.T) {
	bpath := filepath.Join(t.TempDir(), "baseline.json")
	escapes := filepath.Join(violationsRoot, "escapes.txt")

	// Step 1: grandfather everything.
	code, _, stderr := runVet(t,
		"-root", violationsRoot, "-escapes-from", escapes,
		"-baseline", bpath, "-write-baseline")
	if code != 0 {
		t.Fatalf("write-baseline run: exit %d, want 0; stderr: %s", code, stderr)
	}

	// Step 2: the baselined run is green and reports everything baselined.
	code, stdout, stderr := runVet(t,
		"-root", violationsRoot, "-escapes-from", escapes,
		"-baseline", bpath, "-json")
	if code != 0 {
		t.Fatalf("baselined run: exit %d, want 0; stderr: %s", code, stderr)
	}
	var rep srccheck.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.New != 0 || rep.Summary.Baselined != rep.Summary.Total || rep.Summary.Total == 0 {
		t.Fatalf("baselined run summary: %+v", rep.Summary)
	}

	// Step 3: drop one entry — that finding is new at its site again.
	b, err := srccheck.LoadBaseline(bpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) < 2 {
		t.Fatalf("baseline too small to exercise removal: %d entries", len(b.Entries))
	}
	removed := b.Entries[0]
	b.Entries = b.Entries[1:]
	if err := b.Save(bpath); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runVet(t,
		"-root", violationsRoot, "-escapes-from", escapes,
		"-baseline", bpath, "-json")
	if code != 1 {
		t.Fatalf("run after baseline removal: exit %d, want 1", code)
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.New != 1 {
		t.Fatalf("exactly the un-grandfathered finding should be new, summary: %+v", rep.Summary)
	}

	// Step 4: a baseline entry matching nothing is stale, not fatal.
	b.Entries = append(b.Entries, removed, srccheck.BaselineEntry{
		Rule: "det-time-now", File: "internal/gone/gone.go", Symbol: "Paid", Message: "debt was repaid",
	})
	if err := b.Save(bpath); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runVet(t,
		"-root", violationsRoot, "-escapes-from", escapes,
		"-baseline", bpath, "-json")
	if code != 0 {
		t.Fatalf("run with stale entry: exit %d, want 0", code)
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Stale != 1 || len(rep.StaleBaseline) != 1 {
		t.Fatalf("stale entry not reported: %+v", rep.Summary)
	}
	if rep.StaleBaseline[0].Symbol != "Paid" {
		t.Fatalf("wrong stale entry surfaced: %+v", rep.StaleBaseline[0])
	}

	// The text report mentions staleness too, for humans.
	code, stdout, _ = runVet(t,
		"-root", violationsRoot, "-escapes-from", escapes,
		"-baseline", bpath)
	if code != 0 {
		t.Fatalf("text run with stale entry: exit %d, want 0", code)
	}
	if !strings.Contains(stdout, "stale") {
		t.Errorf("text report does not mention the stale baseline entry:\n%s", stdout)
	}
}

// TestUsageErrors: unknown checkers and positional arguments are usage
// errors (exit 2), distinct from findings (exit 1).
func TestUsageErrors(t *testing.T) {
	if code, _, _ := runVet(t, "-rules", "nonsense"); code != 2 {
		t.Errorf("unknown checker: exit %d, want 2", code)
	}
	if code, _, _ := runVet(t, "positional"); code != 2 {
		t.Errorf("positional argument: exit %d, want 2", code)
	}
	if code, _, _ := runVet(t, "-root", violationsRoot, "-escapes-from", "no/such/file.txt"); code != 2 {
		t.Errorf("missing escapes file: exit %d, want 2", code)
	}
}
