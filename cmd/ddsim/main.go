// Command ddsim runs one workload (or an assembly file) on the timing
// simulator under one (N+M) configuration and prints the statistics block.
//
// Usage:
//
//	ddsim -w vortex -ports 2+2 -opt -scale 0.5
//	ddsim -f program.s -ports 3+2 -steer sp
//	ddsim -w gcc -maxcycles 2000000 -timeout 30s
//
// Every run is bounded: -maxcycles caps the simulated cycle count,
// -timeout caps wall-clock time, and a forward-progress watchdog aborts a
// pipeline that stops committing. An aborted run exits non-zero and prints
// the typed failure with its pipeline snapshot (cycle, ROB head, stream
// queue heads, port/combining state).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/simerr"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wname   = flag.String("w", "", "workload name (see -list)")
		file    = flag.String("f", "", "assembly file to simulate instead of a workload")
		ports   = flag.String("ports", "2+0", "(N+M) port configuration, e.g. 3+2")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		opt     = flag.Bool("opt", false, "enable fast data forwarding and 2-way combining")
		static  = flag.Bool("staticopt", false, "restrict the optimizations to statically-proven pairs/groups (implies -opt)")
		combine = flag.Int("combine", 0, "access combining width (overrides -opt's 2)")
		steer   = flag.String("steer", "hint", "steering policy: hint, sp, oracle, dual, static, spec")
		strip   = flag.Bool("strip", false, "strip compiler hints from the program before simulating")
		maxInst = flag.Uint64("maxinst", 0, "commit budget (0 = run to halt)")
		list    = flag.Bool("list", false, "list available workloads and exit")
		traceN  = flag.Int("trace", 0, "print a pipeline trace of the first N instructions")

		maxCycles = flag.Uint64("maxcycles", 0, "abort after this many simulated cycles (0 = unbounded)")
		timeout   = flag.Duration("timeout", 0, "abort after this much wall-clock time (0 = unbounded)")
		watchdog  = flag.Uint64("watchdog", 0, "forward-progress window in cycles (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-10s %-12s %s\n", w.Name, w.PaperName, w.Kind)
		}
		return
	}

	n, m, err := config.ParseNM(*ports)
	if err != nil {
		fatal(err)
	}
	cfg := config.Default().WithPorts(n, m)
	if *opt || *static {
		cfg = cfg.WithOptimizations(2)
	}
	if *combine > 0 {
		cfg.CombineWidth = *combine
	}
	if *static {
		cfg.ForwardStatic = true
		cfg.CombineStatic = cfg.CombineWidth > 1
	}
	switch *steer {
	case "hint":
		cfg.Steering = config.SteerHint
	case "sp":
		cfg.Steering = config.SteerSP
	case "oracle":
		cfg.Steering = config.SteerOracle
	case "dual":
		cfg.Steering = config.SteerDual
	case "static":
		cfg.Steering = config.SteerStatic
	case "spec":
		cfg.Steering = config.SteerSpec
	default:
		fatal(fmt.Errorf("unknown steering policy %q", *steer))
	}
	cfg.MaxInsts = *maxInst

	var prog *asm.Program
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(*file, string(src))
		if err != nil {
			fatal(err)
		}
	case *wname != "":
		w, err := workload.ByName(*wname)
		if err != nil {
			fatal(err)
		}
		prog = w.Program(*scale)
	default:
		fatal(fmt.Errorf("need -w <workload> or -f <file>; see -list"))
	}
	if *strip {
		prog = prog.StripHints()
	}

	c, err := core.New(prog, cfg)
	if err != nil {
		fatal(err)
	}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
		c.SetTracer(rec)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := c.RunWith(ctx, core.RunOptions{
		MaxCycles:      *maxCycles,
		WatchdogCycles: *watchdog,
	})
	if err != nil {
		fatalSim(err)
	}
	fmt.Print(res)
	if rec != nil {
		fmt.Println()
		fmt.Print(trace.Render(rec.Events))
		fmt.Println()
		fmt.Print(trace.Summary(rec.Events))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddsim:", err)
	os.Exit(1)
}

// fatalSim reports a failed run; for a typed simulation failure it also
// prints the pipeline snapshot (the watchdog/abort state dump).
func fatalSim(err error) {
	fmt.Fprintln(os.Stderr, "ddsim:", err)
	var se *simerr.SimError
	if errors.As(err, &se) {
		fmt.Fprintf(os.Stderr, "pipeline snapshot (%s):\n%s", se.Kind, se.Snapshot)
	}
	os.Exit(1)
}
