// Command ddsim runs one workload (or an assembly file) on the timing
// simulator under one (N+M) configuration and prints the statistics block.
//
// Usage:
//
//	ddsim -w vortex -ports 2+2 -opt -scale 0.5
//	ddsim -f program.s -ports 3+2 -steer sp
//	ddsim -w gcc -maxcycles 2000000 -timeout 30s
//
// Every run is bounded: -maxcycles caps the simulated cycle count,
// -timeout caps wall-clock time, and a forward-progress watchdog aborts a
// pipeline that stops committing. An aborted run exits non-zero and prints
// the typed failure with its pipeline snapshot (cycle, ROB head, stream
// queue heads, port/combining state).
//
// -engine selects the run loop: event (default) skips quiescent cycle
// spans via the next-event scheduler, tick is the classic per-cycle
// reference loop; both produce bit-identical results. -cpuprofile,
// -memprofile and -exectrace capture pprof/trace artifacts of the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/cliutil"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wname   = flag.String("w", "", "workload name (see -list)")
		file    = flag.String("f", "", "assembly file to simulate instead of a workload")
		ports   = flag.String("ports", "2+0", "(N+M) port configuration, e.g. 3+2")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		opt     = flag.Bool("opt", false, "enable fast data forwarding and 2-way combining")
		static  = flag.Bool("staticopt", false, "restrict the optimizations to statically-proven pairs/groups (implies -opt)")
		combine = flag.Int("combine", 0, "access combining width (overrides -opt's 2)")
		steer   = flag.String("steer", "hint", "steering policy: hint, sp, oracle, dual, static, spec")
		strip   = flag.Bool("strip", false, "strip compiler hints from the program before simulating")
		maxInst = flag.Uint64("maxinst", 0, "commit budget (0 = run to halt)")
		list    = flag.Bool("list", false, "list available workloads and exit")
		traceN  = flag.Int("trace", 0, "print a pipeline trace of the first N instructions")
	)
	budget := cliutil.RegisterBudget(flag.CommandLine)
	engineFlag := cliutil.RegisterEngine(flag.CommandLine)
	profiles := cliutil.RegisterProfilesExecTrace(flag.CommandLine)
	flag.Parse()

	engine, err := core.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-10s %-12s %s\n", w.Name, w.PaperName, w.Kind)
		}
		return
	}

	n, m, err := config.ParseNM(*ports)
	if err != nil {
		fatal(err)
	}
	cfg := config.Default().WithPorts(n, m)
	if *opt || *static {
		cfg = cfg.WithOptimizations(2)
	}
	if *combine > 0 {
		cfg.CombineWidth = *combine
	}
	if *static {
		cfg.ForwardStatic = true
		cfg.CombineStatic = cfg.CombineWidth > 1
	}
	steering, err := config.ParseSteering(*steer)
	if err != nil {
		fatal(err)
	}
	cfg.Steering = steering
	cfg.MaxInsts = *maxInst

	var prog *asm.Program
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(*file, string(src))
		if err != nil {
			fatal(err)
		}
	case *wname != "":
		w, err := workload.ByName(*wname)
		if err != nil {
			fatal(err)
		}
		prog = w.Program(*scale)
	default:
		fatal(fmt.Errorf("need -w <workload> or -f <file>; see -list"))
	}
	if *strip {
		prog = prog.StripHints()
	}

	c, err := core.New(prog, cfg)
	if err != nil {
		fatal(err)
	}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
		c.SetTracer(rec)
	}
	opts := budget.RunOptions()
	opts.Engine = engine
	stopProfiles, err := profiles.Start()
	if err != nil {
		fatal(err)
	}
	res, err := c.RunWith(context.Background(), opts)
	stopProfiles()
	if err != nil {
		cliutil.FatalSim("ddsim", err)
	}
	fmt.Print(res)
	if rec != nil {
		fmt.Println()
		fmt.Print(trace.Render(rec.Events))
		fmt.Println()
		fmt.Print(trace.Summary(rec.Events))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddsim:", err)
	os.Exit(1)
}
