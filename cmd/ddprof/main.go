// Command ddprof characterizes a workload or assembly file on the
// functional emulator: instruction mix, local-access fractions (paper
// Figure 2), frame-size distribution (Figure 3), call behaviour, and LVC
// miss rates across sizes (Figure 6).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		wname = flag.String("w", "", "workload name")
		file  = flag.String("f", "", "assembly file")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		lvc   = flag.Bool("lvc", false, "also sweep LVC sizes (Figure 6 data)")
	)
	flag.Parse()

	var prog *asm.Program
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(*file, string(src))
		if err != nil {
			fatal(err)
		}
	case *wname != "":
		w, err := workload.ByName(*wname)
		if err != nil {
			fatal(err)
		}
		prog = w.Program(*scale)
	default:
		fatal(fmt.Errorf("need -w <workload> or -f <file>"))
	}

	p, err := profile.Run(prog, 0)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("instructions      %d\n", p.Insts)
	fmt.Printf("loads             %d (%.1f%% of insts, %.1f%% local)\n",
		p.Loads, 100*p.LoadFreq(), stats.Pct(p.LocalLoads, p.Loads))
	fmt.Printf("stores            %d (%.1f%% of insts, %.1f%% local)\n",
		p.Stores, 100*p.StoreFreq(), stats.Pct(p.LocalStores, p.Stores))
	fmt.Printf("local refs        %.1f%% of all memory references\n", 100*p.LocalFraction())
	fmt.Printf("sp/fp-indexed     %.1f%% of local refs\n", stats.Pct(p.SPIndexedLocal, p.LocalRefs()))
	fmt.Printf("calls             %d (max depth %d)\n", p.Calls, p.MaxCallDepth)
	if p.DynFrames.Total() > 0 {
		fmt.Printf("dyn frames        mean %.1f words, p50 %d, p90 %d, p99 %d, max %d\n",
			p.DynFrames.Mean(), p.DynFrames.Percentile(0.5),
			p.DynFrames.Percentile(0.9), p.DynFrames.Percentile(0.99), p.DynFrames.Max())
		sf := p.StaticFrames()
		fmt.Printf("static frames     %d sites, mean %.1f words, max %d\n",
			sf.Total(), sf.Mean(), sf.Max())
	}
	fmt.Printf("static mem insts  %d hinted, %d unhinted\n", p.HintedMemPCs, p.UnhintedMemPCs)

	if *lvc {
		fmt.Println("\nLVC miss rates (direct-mapped, 32B lines):")
		for _, size := range []int{512, 1024, 2048, 4096} {
			res, err := profile.SimulateLVC(prog, size, 32, 1, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %4dB: %.3f%% (%d local refs)\n",
				size, 100*res.Stats.MissRate(), res.LocalRefs)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddprof:", err)
	os.Exit(1)
}
