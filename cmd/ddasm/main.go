// Command ddasm assembles, disassembles and functionally runs programs
// written in the simulator's ISA.
//
// Usage:
//
//	ddasm -d program.s             # assemble and disassemble
//	ddasm -run program.s           # assemble and emulate, print OUT trace
//	ddasm -lint program.s          # run the static access-region linter
//	ddasm -assign program.s        # print the hint-assignment table
//	ddasm -assign -json program.s  # ... as the serializable HintTable artifact
//	ddasm -dump-workload li        # print a generated workload's source
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/workload"
)

func main() {
	var (
		dis     = flag.Bool("d", false, "print disassembly")
		run     = flag.Bool("run", false, "run on the functional emulator")
		lint    = flag.Bool("lint", false, "run the static access-region linter")
		assign  = flag.Bool("assign", false, "run the hint-assignment pass and print the table")
		asJSON  = flag.Bool("json", false, "with -assign: emit the serializable HintTable artifact")
		maxInst = flag.Uint64("maxinst", 100_000_000, "emulation instruction budget")
		dumpW   = flag.String("dump-workload", "", "print a workload's generated assembly and exit")
		scale   = flag.Float64("scale", 0.1, "scale for -dump-workload")
	)
	flag.Parse()

	if *dumpW != "" {
		w, err := workload.ByName(*dumpW)
		if err != nil {
			fatal(err)
		}
		fmt.Print(w.Source(*scale))
		return
	}

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("need exactly one assembly file"))
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	if !(*assign && *asJSON) {
		fmt.Printf("assembled %s: %d instructions, %d data bytes, entry %#x\n",
			path, len(prog.Text), len(prog.Data), prog.Entry)
	}

	if *assign {
		res := analysis.Assign(prog)
		if *asJSON {
			if err := res.Table.EncodeJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			fmt.Print(res.Report())
			fmt.Println(res.Table.Summarize())
			fmt.Printf("forwarding pairs: %d, combining groups: %d\n",
				len(res.Table.Pairs), len(res.Table.Groups))
		}
	}
	if *dis {
		fmt.Print(prog.Disassemble())
	}
	if *lint {
		res := analysis.Analyze(prog)
		for _, d := range res.Diags {
			fmt.Println(d)
		}
		fmt.Println(res.Summarize())
		if len(res.Diags) > 0 {
			os.Exit(1)
		}
	}
	if *run {
		m := emu.New(prog)
		halted, err := m.Run(*maxInst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions (halted=%v)\n", m.InstCount, halted)
		for i, v := range m.Output {
			fmt.Printf("out[%d] = %d\n", i, v)
		}
		for i, v := range m.FOutput {
			fmt.Printf("fout[%d] = %g\n", i, v)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddasm:", err)
	os.Exit(1)
}
